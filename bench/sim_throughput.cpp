/**
 * @file
 * Simulator-throughput benchmark: how many simulated memory operations
 * per host second the per-access hot path (System::step ->
 * NestedWalker::translate -> Cache::access) sustains.
 *
 * Not a paper figure: this measures the *simulator itself*, so hot-path
 * refactors have a tracked perf trajectory. It drives the mixed
 * pagerank+objdet scenario (both policy legs) through ExperimentSuite on
 * one thread — per-leg wall-clock must not be perturbed by sibling legs —
 * and reports simulated ops/sec per leg; the numbers land in
 * BENCH_sim_throughput.json via the standard sink (`sim_perf` per leg).
 *
 * With --smoke (or PTM_SMOKE=1) the scenario shrinks to ctest size; the
 * run then only sanity-checks that throughput is reported, it does not
 * produce a meaningful rate.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/suite.hpp"

namespace {

int failures = 0;

void
check(bool ok, const char *what)
{
    if (!ok) {
        std::fprintf(stderr, "sim_throughput: FAIL: %s\n", what);
        ++failures;
    }
}

void
report_leg(const char *leg, const ptm::sim::ScenarioResult &result)
{
    std::printf("sim_throughput: %-9s ops=%llu host_seconds=%.3f "
                "ops_per_sec=%.0f\n",
                leg, static_cast<unsigned long long>(result.total_ops),
                result.host_seconds, result.ops_per_second());
    check(result.total_ops > 0, "leg executed operations");
    check(result.host_seconds > 0.0, "leg recorded wall-clock");
    check(result.ops_per_second() > 0.0, "leg reports a throughput");
}

}  // namespace

int
main(int argc, char **argv)
{
    using namespace ptm::sim;

    bool smoke = std::getenv("PTM_SMOKE") != nullptr;
    const char *floor_path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--enforce-floor") == 0 &&
                 i + 1 < argc)
            floor_path = argv[++i];
    }

    // The acceptance scenario: pagerank victim colocated with objdet
    // co-runners, both policies. Heavy enough that steady-state ops
    // dominate setup, small enough to finish in seconds.
    ScenarioConfig mixed = ScenarioConfig{}
                               .with_victim("pagerank")
                               .with_corunner("objdet", 2)
                               .with_scale(smoke ? 0.05 : 0.4)
                               .with_measure_ops(smoke ? 20'000 : 2'000'000)
                               .with_warmup_ops(smoke ? 5'000 : 100'000);
    // Throughput configuration: a coarser scheduling quantum and a deep
    // walk register file so dispatch batches actually reach the WRF
    // depth (the experiment default slice_ops=2 caps batches at 2 ops).
    // The bench measures simulator speed, not a paper figure, so the
    // interleave change is free.
    mixed.platform.slice_ops = 64;
    mixed.platform.walk_batch = 32;
    if (smoke) {
        mixed.platform.guest_frames = 16 * 1024;
        mixed.platform.host_frames = 24 * 1024;
    }

    ExperimentSuite suite("sim_throughput");
    suite.add("pagerank_objdet", mixed);

    SuiteOptions options;
    options.threads = 1;  // per-leg wall-clock must be interference-free
    options.json_dir = ".";
    SuiteResult result = suite.run(options);

    const EntryResult &entry = result.at("pagerank_objdet");
    report_leg("baseline", entry.paired.baseline);
    report_leg("ptemagnet", entry.paired.ptemagnet);

    double total_ops =
        static_cast<double>(entry.paired.baseline.total_ops +
                            entry.paired.ptemagnet.total_ops);
    double total_seconds = entry.paired.baseline.host_seconds +
                           entry.paired.ptemagnet.host_seconds;
    double combined = 0.0;
    if (total_seconds > 0.0) {
        combined = total_ops / total_seconds;
        std::printf("sim_throughput: combined  ops_per_sec=%.0f\n",
                    combined);
    }

    // CI regression gate: --enforce-floor <file> names a checked-in
    // ops/sec floor (one number; '#' comments allowed). The run fails if
    // combined throughput drops more than 20% below it — wide enough for
    // shared-runner noise, tight enough to catch real hot-path
    // regressions. Raise the floor when the simulator gets faster.
    if (floor_path != nullptr) {
        double floor = 0.0;
        std::FILE *f = std::fopen(floor_path, "r");
        check(f != nullptr, "floor file opens");
        if (f != nullptr) {
            char line[256];
            while (std::fgets(line, sizeof line, f) != nullptr) {
                if (line[0] == '#' || line[0] == '\n')
                    continue;
                floor = std::strtod(line, nullptr);
                break;
            }
            std::fclose(f);
        }
        check(floor > 0.0, "floor file holds a positive ops/sec number");
        std::printf("sim_throughput: floor     ops_per_sec=%.0f "
                    "(enforcing >= 80%%: %.0f)\n",
                    floor, 0.8 * floor);
        if (combined < 0.8 * floor) {
            // One self-contained line with the numbers: CI logs get cut
            // down to the FAIL lines, which must carry the diagnosis.
            std::fprintf(stderr,
                         "sim_throughput: FAIL: combined throughput "
                         "%.0f ops/sec is below 80%% of the checked-in "
                         "floor %.0f (gate %.0f); see %s for the "
                         "floor's provenance\n",
                         combined, floor, 0.8 * floor, floor_path);
            ++failures;
        }
    }

    // Stage breakdown side-run: same scenario at reduced length with the
    // host-side stage timers armed. Separate from the headline legs so
    // the clock reads never perturb the reported throughput.
    ScenarioConfig timed = mixed;
    timed.platform.stage_timing = true;
    timed.with_measure_ops(smoke ? 5'000 : 400'000)
        .with_warmup_ops(smoke ? 1'000 : 50'000);
    ScenarioResult timed_result = run_scenario(timed);
    const StageTimes &stages = timed_result.stage_times;
    if (stages.total_ns() > 0) {
        double total = static_cast<double>(stages.total_ns());
        std::printf("sim_throughput: stages    dispatch=%.1f%% "
                    "walk=%.1f%% retire=%.1f%% stats=%.1f%% "
                    "(side-run, %llu ops)\n",
                    100.0 * static_cast<double>(stages.dispatch_ns) / total,
                    100.0 * static_cast<double>(stages.walk_ns) / total,
                    100.0 * static_cast<double>(stages.retire_ns) / total,
                    100.0 * static_cast<double>(stages.stats_ns) / total,
                    static_cast<unsigned long long>(
                        timed_result.total_ops));
    }
    check(stages.total_ns() > 0, "stage timers recorded the side-run");

    if (failures == 0)
        std::printf("sim_throughput: OK (%s mode)\n",
                    smoke ? "smoke" : "full");
    return failures == 0 ? 0 : 1;
}
