/**
 * @file
 * Policy & page-table zoo: the factory-backed ablation suite.
 *
 * Sweeps every registered allocation policy (vm::registered_providers:
 * buddy, ptemagnet, reserve_thp, thp, ...) against every registered
 * translation structure (pt::registered_tables: radix, hashed, ...) for
 * each victim workload — the full {policy x table x workload} cross
 * product, one Single run per cell. Nothing here names a concrete
 * provider or table class: a policy registered tomorrow shows up in this
 * ablation automatically.
 *
 * Output is BENCH_policy_zoo.json: the standard suite document plus a
 * "ranking" block that orders every cell of each workload along the
 * three axes the paper trades off — nested-walk cycles (§4), host-PT
 * fragmentation (§3.2), and memory bloat (§2.3/§6.2, measured as frames
 * the provider holds without mapping them).
 *
 * With --smoke (or PTM_SMOKE=1) the sweep shrinks to ctest size: one
 * workload, tiny scale — enough to prove every registered combination
 * constructs, runs, and ranks.
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "pt/table_factory.hpp"
#include "sim/suite.hpp"
#include "vm/provider_factory.hpp"

namespace {

using namespace ptm;
using namespace ptm::sim;

int failures = 0;

void
check(bool ok, const char *what)
{
    if (!ok) {
        std::fprintf(stderr, "ablation_policies: FAIL: %s\n", what);
        ++failures;
    }
}

/// One cell of the cross product, flattened for ranking.
struct Cell {
    std::string victim;
    std::string policy;
    std::string table;
    double walk_cycles = 0.0;
    double host_pt_fragmentation = 0.0;
    std::uint64_t memory_bloat_pages = 0;
    std::uint64_t victim_rss_pages = 0;
};

Json
cell_json(const Cell &cell)
{
    Json j = Json::object();
    j.set("policy", cell.policy);
    j.set("table", cell.table);
    j.set("walk_cycles", cell.walk_cycles);
    j.set("host_pt_fragmentation", cell.host_pt_fragmentation);
    j.set("memory_bloat_pages", cell.memory_bloat_pages);
    j.set("victim_rss_pages", cell.victim_rss_pages);
    return j;
}

/// Cells of one victim sorted ascending by @p key (lower is better on
/// every axis), serialized in rank order.
template <typename Key>
Json
ranked(std::vector<Cell> cells, Key key)
{
    std::sort(cells.begin(), cells.end(),
              [&key](const Cell &a, const Cell &b) {
                  return key(a) < key(b);
              });
    Json arr = Json::array();
    for (const Cell &cell : cells)
        arr.push_back(cell_json(cell));
    return arr;
}

}  // namespace

int
main(int argc, char **argv)
{
    bool smoke = std::getenv("PTM_SMOKE") != nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    }

    const std::vector<std::string> policies = vm::registered_providers();
    const std::vector<std::string> tables = pt::registered_tables();
    const std::vector<std::string> victims =
        smoke ? std::vector<std::string>{"pagerank"}
              : std::vector<std::string>{"pagerank", "gcc"};

    check(policies.size() >= 4, "at least 4 registered policies");
    check(tables.size() >= 2, "at least 2 registered tables");

    ExperimentSuite suite("policy_zoo");
    for (const std::string &victim : victims) {
        for (const std::string &policy : policies) {
            for (const std::string &table : tables) {
                ScenarioConfig config =
                    ScenarioConfig{}
                        .with_victim(victim)
                        .with_corunner("objdet", 2)
                        .with_policy(policy)
                        .with_table(table)
                        .with_scale(smoke ? 0.05 : 0.25)
                        .with_measure_ops(smoke ? 20'000 : 300'000)
                        .with_warmup_ops(smoke ? 5'000 : 50'000);
                if (smoke) {
                    config.platform.guest_frames = 16 * 1024;
                    config.platform.host_frames = 24 * 1024;
                }
                suite.add(victim + "/" + policy + "+" + table,
                          std::move(config), RunKind::Single);
            }
        }
    }

    SuiteOptions options;
    options.write_json = false;  // written below, with the ranking block
    SuiteResult result = suite.run(options);
    check(result.failed_count() == 0, "every cell completed");

    // Flatten per victim and print the stdout table.
    std::printf("%-10s %-12s %-7s %14s %8s %12s\n", "victim", "policy",
                "table", "walk cycles", "frag", "bloat pages");
    Json ranking = Json::object();
    for (const std::string &victim : victims) {
        std::vector<Cell> cells;
        for (const EntryResult &entry : result.entries()) {
            if (entry.entry.name.rfind(victim + "/", 0) != 0 ||
                entry.failed())
                continue;
            const ScenarioResult &run = entry.single;
            Cell cell;
            cell.victim = victim;
            cell.policy = entry.entry.config.resolved_policy();
            cell.table = entry.entry.config.resolved_table();
            cell.walk_cycles = run.metrics.get("page_walk_cycles");
            cell.host_pt_fragmentation =
                run.metrics.get("host_pt_fragmentation");
            cell.memory_bloat_pages = run.provider_held_pages;
            cell.victim_rss_pages = run.victim_rss_pages;
            cells.push_back(std::move(cell));
            std::printf("%-10s %-12s %-7s %14.0f %8.2f %12llu\n",
                        victim.c_str(), cells.back().policy.c_str(),
                        cells.back().table.c_str(),
                        cells.back().walk_cycles,
                        cells.back().host_pt_fragmentation,
                        static_cast<unsigned long long>(
                            cells.back().memory_bloat_pages));
        }
        check(cells.size() == policies.size() * tables.size(),
              "every policy x table cell present for the victim");

        Json axes = Json::object();
        axes.set("by_walk_cycles",
                 ranked(cells, [](const Cell &c) {
                     return c.walk_cycles;
                 }));
        axes.set("by_host_pt_fragmentation",
                 ranked(cells, [](const Cell &c) {
                     return c.host_pt_fragmentation;
                 }));
        axes.set("by_memory_bloat", ranked(cells, [](const Cell &c) {
                     return static_cast<double>(c.memory_bloat_pages);
                 }));
        ranking.set(victim, std::move(axes));
    }

    Json doc = result.to_json();
    doc.set("policies", static_cast<std::uint64_t>(policies.size()));
    doc.set("tables", static_cast<std::uint64_t>(tables.size()));
    doc.set("ranking", std::move(ranking));

    // Same atomic write-then-rename discipline as SuiteResult::write_json.
    const char *env = std::getenv("PTM_BENCH_DIR");
    std::string path = std::string(env != nullptr ? env : ".") +
                       "/BENCH_policy_zoo.json";
    std::string tmp_path = path + ".tmp";
    {
        std::ofstream out(tmp_path, std::ios::trunc);
        check(static_cast<bool>(out), "BENCH temp file opens");
        out << doc.dump(2) << '\n';
        out.flush();
        check(out.good(), "BENCH temp file written");
    }
    check(std::rename(tmp_path.c_str(), path.c_str()) == 0,
          "BENCH file renamed into place");
    std::printf("ablation_policies: results -> %s\n", path.c_str());

    if (failures == 0)
        std::printf("ablation_policies: OK (%s mode)\n",
                    smoke ? "smoke" : "full");
    return failures == 0 ? 0 : 1;
}
