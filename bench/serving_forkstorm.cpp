/**
 * @file
 * Serverless fork-storm bench: a warm function image forked into a
 * burst of short-lived instances. The victim runs the fork_storm
 * workload (per-request arenas, COW-style stores into the shared
 * image), while a ChurnPlan fork storm multiplies fork_storm guests on
 * an overcommitted host — COW faults landing against PaRT reservations
 * under reclaim pressure.
 *
 * Two modes:
 *
 * - default: the slow bench tier. A policy sweep over the fork_storm
 *   victim plus the churn-storm overcommit leg, emitting
 *   BENCH_serving_forkstorm.json.
 * - `--smoke`: the tier-1 ctest (`serving_forkstorm_smoke`).
 *   Scaled-down suite with determinism checks across repeats and suite
 *   thread counts (1 vs 4); writes BENCH_serving_forkstorm.json into
 *   the working directory so CI can archive it. Exits nonzero on any
 *   violation.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/suite.hpp"

namespace {

using namespace ptm::sim;

int failures = 0;

void
check(bool ok, const char *what)
{
    if (!ok) {
        std::fprintf(stderr, "serving_forkstorm: FAIL: %s\n", what);
        ++failures;
    }
}

/// One warm function instance: image reads with COW-style stores,
/// request-scoped arenas remapped every request.
ScenarioConfig
fork_config(double scale, std::uint64_t measure_ops)
{
    ScenarioConfig config = ScenarioConfig{}
                                .with_workload("fork_storm")
                                .with_workload_param("request_ops", 96)
                                .with_scale(scale)
                                .with_measure_ops(measure_ops)
                                .with_warmup_ops(0);
    return config;
}

/**
 * The storm: churn-forked fork_storm guests pile onto an overcommitted
 * host while the reclaim daemon balloons under watermark pressure and
 * per-VM dirty rings estimate each instance's working set.
 */
ScenarioConfig
storm_config(double scale, std::uint64_t measure_ops,
             std::uint64_t boots, std::uint64_t forks)
{
    ScenarioConfig config = fork_config(scale, measure_ops);
    config.platform.guest_frames = 8192;
    config.platform.host_frames = 16 * 1024;
    config.with_overcommit(OvercommitPolicy{}
                               .with_watermarks(192, 384)
                               .with_balloon_step(96)
                               .with_backoff(4, 64));
    config.with_churn(ChurnPlan::storm(/*seed=*/71, /*begin_step=*/500,
                                       /*end_step=*/measure_ops,
                                       boots, /*kills=*/boots / 3, forks)
                          .with_workload("fork_storm")
                          .with_scale(scale * 0.4)
                          .with_guest_frames(2048));
    config.with_dirty_ring(DirtyRingConfig{}
                               .with_ring_entries(512)
                               .with_epoch_ops(8192));
    return config;
}

ExperimentSuite
build_suite(double scale, std::uint64_t measure_ops, std::uint64_t boots,
            std::uint64_t forks)
{
    ExperimentSuite suite("serving_forkstorm");
    suite.sweep("fork", "policy",
                std::vector<std::string>{"buddy", "ptemagnet", "thp"},
                fork_config(scale, measure_ops), RunKind::Single);
    suite.add("fork_paired", fork_config(scale, measure_ops),
              RunKind::Paired);
    suite.add("fork_churn_storm",
              storm_config(scale, measure_ops, boots, forks),
              RunKind::Single);
    return suite;
}

/// Field-by-field equality over the storm's robustness surface.
bool
same_result(const ScenarioResult &a, const ScenarioResult &b,
            const char *what)
{
    bool ok = a.victim_ops == b.victim_ops &&
              a.victim_cycles == b.victim_cycles &&
              a.victim_rss_pages == b.victim_rss_pages &&
              a.churn_boots == b.churn_boots &&
              a.churn_kills == b.churn_kills &&
              a.churn_forks == b.churn_forks &&
              a.oom_kills == b.oom_kills &&
              a.host_balloon_pages == b.host_balloon_pages &&
              a.dirty_ring_logged == b.dirty_ring_logged &&
              a.dirty_ring_epochs == b.dirty_ring_epochs &&
              a.ws_estimate_pages == b.ws_estimate_pages &&
              a.ws_guided_sweeps == b.ws_guided_sweeps &&
              a.vms.size() == b.vms.size();
    if (ok) {
        for (std::size_t i = 0; i < a.vms.size(); ++i) {
            ok = ok && a.vms[i].status == b.vms[i].status &&
                 a.vms[i].backed_pages == b.vms[i].backed_pages &&
                 a.vms[i].ws_estimate_pages ==
                     b.vms[i].ws_estimate_pages &&
                 a.vms[i].walk_cycles == b.vms[i].walk_cycles &&
                 a.vms[i].ops == b.vms[i].ops;
        }
    }
    check(ok, what);
    return ok;
}

int
smoke()
{
    const double scale = 0.25;
    const std::uint64_t measure_ops = 30'000;
    const std::uint64_t boots = 12;
    const std::uint64_t forks = 6;

    const ScenarioConfig storm =
        storm_config(scale, measure_ops, boots, forks);

    ScenarioResult first = run_scenario(storm);
    check(first.victim_ops >= measure_ops,
          "the warm instance served its requests");
    check(first.churn_boots >= boots / 2, "the storm booted instances");
    check(first.churn_forks >= 1, "the storm forked instances");
    check(first.dirty_ring_armed && first.dirty_ring_logged > 0,
          "COW-style stores reached the dirty rings");
    check(!first.vms.empty() && first.vms[0].status == "alive",
          "the protected primary instance survived");
    same_result(first, run_scenario(storm),
                "repeat run is bit-identical");

    for (unsigned threads : {1u, 4u}) {
        ExperimentSuite suite =
            build_suite(scale, measure_ops, boots, forks);
        SuiteOptions options;
        options.threads = threads;
        options.write_json = threads == 4;
        options.json_dir = ".";
        options.announce = false;
        SuiteResult result = suite.run(options);
        check(result.failed_count() == 0, "all suite entries completed");
        same_result(first, result.at("fork_churn_storm").single,
                    "suite storm leg matches the serial run");
    }

    if (failures == 0)
        std::printf("serving_forkstorm smoke OK: %llu ops, %llu boots, "
                    "%llu forks, %llu dirty pages logged, identical "
                    "across repeats and 1/4-thread suites\n",
                    (unsigned long long)first.victim_ops,
                    (unsigned long long)first.churn_boots,
                    (unsigned long long)first.churn_forks,
                    (unsigned long long)first.dirty_ring_logged);
    return failures == 0 ? EXIT_SUCCESS : EXIT_FAILURE;
}

}  // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0)
        return smoke();

    ExperimentSuite suite =
        build_suite(1.0, 300'000, /*boots=*/32, /*forks=*/16);
    SuiteOptions options;
    options.json_dir = ".";
    SuiteResult result = suite.run(options);

    std::printf("\n== serving_forkstorm ==\n");
    for (const EntryResult &entry : result.entries()) {
        if (entry.failed()) {
            std::printf("%-24s FAILED: %s\n", entry.entry.name.c_str(),
                        entry.error.c_str());
            continue;
        }
        if (entry.is_paired()) {
            std::printf("%-24s improvement=%+.1f%%\n",
                        entry.entry.name.c_str(),
                        entry.improvement_percent());
            continue;
        }
        const ScenarioResult &r = entry.single;
        std::printf("%-24s cycles=%-12llu ops=%-8llu boots=%-4llu "
                    "forks=%-4llu ring[logged=%llu ws=%llu]\n",
                    entry.entry.name.c_str(),
                    (unsigned long long)r.victim_cycles,
                    (unsigned long long)r.victim_ops,
                    (unsigned long long)r.churn_boots,
                    (unsigned long long)r.churn_forks,
                    (unsigned long long)r.dirty_ring_logged,
                    (unsigned long long)r.ws_estimate_pages);
    }
    return EXIT_SUCCESS;
}
