/**
 * @file
 * Ablation (DESIGN.md §7): where do nested-walk cycles come from?
 * Toggles the page-walk caches and the nested TLB to decompose the 2D
 * walk cost, and shows that PTEMagnet's benefit is complementary to both
 * structures (it attacks the hPTE *leaf* lines, which neither structure
 * covers).
 */
#include <cstdio>

#include "sim/suite.hpp"

int
main()
{
    using namespace ptm::sim;

    struct Variant {
        const char *name;
        bool pwc;
        bool nested;
    };
    const Variant variants[] = {
        {"PWC + nested TLB (default)", true, true},
        {"no PWC", false, true},
        {"no nested TLB", true, false},
        {"neither", false, false},
    };

    ExperimentSuite suite("ablation_translation_caches");
    for (const Variant &variant : variants) {
        ScenarioConfig config = ScenarioConfig{}
                                    .with_victim("pagerank")
                                    .with_corunner_preset("objdet8")
                                    .with_scale(0.5)
                                    .with_measure_ops(400'000);
        config.platform.tlb.pwc_enabled = variant.pwc;
        config.platform.tlb.nested_tlb_enabled = variant.nested;
        suite.add(variant.name, config);
    }
    SuiteResult result = suite.run();

    std::printf("Ablation: translation-cache structures "
                "(pagerank + objdet)\n");
    std::printf("%-28s %14s %14s %13s\n", "configuration", "base walkcyc",
                "ptm walkcyc", "improvement");
    for (const EntryResult &entry : result.entries()) {
        const PairedResult &pair = entry.paired;
        std::printf("%-28s %14.0f %14.0f %+12.1f%%\n",
                    entry.entry.name.c_str(),
                    pair.baseline.metrics.get("page_walk_cycles"),
                    pair.ptemagnet.metrics.get("page_walk_cycles"),
                    pair.improvement_percent());
    }

    std::printf("\nPTEMagnet keeps helping in every configuration: the "
                "fragmented hPTE leaf lines\nit packs are not covered by "
                "PWCs (guest-side) or the nested TLB (translations,\nnot "
                "line locality).\n");
    return 0;
}
