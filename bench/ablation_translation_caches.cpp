/**
 * @file
 * Ablation (DESIGN.md §7): where do nested-walk cycles come from?
 * Toggles the page-walk caches and the nested TLB to decompose the 2D
 * walk cost, and shows that PTEMagnet's benefit is complementary to both
 * structures (it attacks the hPTE *leaf* lines, which neither structure
 * covers).
 */
#include <cstdio>

#include "sim/experiment.hpp"

int
main()
{
    using namespace ptm::sim;

    std::printf("Ablation: translation-cache structures "
                "(pagerank + objdet)\n");
    std::printf("%-28s %14s %14s %13s\n", "configuration", "base walkcyc",
                "ptm walkcyc", "improvement");

    struct Variant {
        const char *name;
        bool pwc;
        bool nested;
    };
    const Variant variants[] = {
        {"PWC + nested TLB (default)", true, true},
        {"no PWC", false, true},
        {"no nested TLB", true, false},
        {"neither", false, false},
    };

    for (const Variant &variant : variants) {
        ScenarioConfig config;
        config.victim = "pagerank";
        config.corunners = {{"objdet", 8}};
        config.scale = 0.5;
        config.measure_ops = 400'000;
        config.platform.tlb.pwc_enabled = variant.pwc;
        config.platform.tlb.nested_tlb_enabled = variant.nested;

        PairedResult pair = run_paired(config);
        double base_walk =
            pair.baseline.metrics.get("page_walk_cycles");
        double ptm_walk =
            pair.ptemagnet.metrics.get("page_walk_cycles");
        std::printf("%-28s %14.0f %14.0f %+12.1f%%\n", variant.name,
                    base_walk, ptm_walk, pair.improvement_percent());
    }

    std::printf("\nPTEMagnet keeps helping in every configuration: the "
                "fragmented hPTE leaf lines\nit packs are not covered by "
                "PWCs (guest-side) or the nested TLB (translations,\nnot "
                "line locality).\n");
    return 0;
}
