/**
 * @file
 * Reproduces §6.2: the incidence of non-allocated (reserved but never
 * mapped) pages within PTEMagnet reservations, sampled periodically over
 * each benchmark's execution and reported as the peak fraction of the
 * benchmark's resident set.
 *
 * Paper: never exceeds 0.2% of the benchmark's physical footprint —
 * applications fill their reservations quickly, so reclamation hardly
 * ever has anything to shoot down.
 */
#include <cstdio>

#include "sim/suite.hpp"
#include "workload/catalog.hpp"

int
main()
{
    using namespace ptm::sim;

    ExperimentSuite suite("sec62_reservation_occupancy");
    for (const std::string &name : ptm::workload::benchmark_names()) {
        suite.add(name,
                  ScenarioConfig{}
                      .with_victim(name)
                      .with_corunner_preset("objdet8")
                      .with_ptemagnet()
                      .with_scale(0.5)
                      .with_measure_ops(400'000),
                  RunKind::Single);
    }
    SuiteResult result = suite.run();

    std::printf("Section 6.2: peak reserved-but-unmapped pages within "
                "reservations\n");
    std::printf("%-10s %18s %16s %12s\n", "benchmark", "peak unused/RSS",
                "reservations", "PaRT hits");
    for (const EntryResult &entry : result.entries()) {
        const ScenarioResult &run = entry.single;
        std::printf("%-10s %17.3f%% %16llu %12llu\n",
                    entry.entry.name.c_str(),
                    100.0 * run.peak_unused_reservation_fraction,
                    static_cast<unsigned long long>(
                        run.reservations_created),
                    static_cast<unsigned long long>(run.part_hits));
    }

    std::printf("\npaper reference: peak never exceeds 0.2%% of the "
                "benchmark's footprint.\n");
    std::printf("note: the peak occurs mid-initialization (sweeping "
                "faults leave each group\npartially mapped for a short "
                "while); steady-state occupancy is near zero.\n");
    return 0;
}
