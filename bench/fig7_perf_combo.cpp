/**
 * @file
 * Reproduces Figure 7 (§6.1): performance improvement of PTEMagnet when
 * each benchmark shares the VM with the full combination of Table 3
 * co-runners (objdet, chameleon, pyaes, json_serdes, rnn_serving, gcc,
 * xz). The heavier cache contention erodes about 1% of the improvement
 * relative to Figure 6.
 *
 * Paper: +3% on average, up to +5% (mcf); never negative.
 */
#include <cstdio>
#include <vector>

#include "sim/experiment.hpp"
#include "workload/catalog.hpp"

int
main()
{
    using namespace ptm::sim;

    std::printf("Figure 7: performance improvement under colocation with "
                "a combination of co-runners\n");
    std::printf("%-10s %14s %14s %13s\n", "benchmark", "base cycles",
                "ptm cycles", "improvement");

    std::vector<double> improvements;
    for (const std::string &name : ptm::workload::benchmark_names()) {
        ScenarioConfig config;
        config.victim = name;
        config.corunners = {{"objdet", 2},      {"chameleon", 1},
                            {"pyaes", 1},       {"json_serdes", 1},
                            {"rnn_serving", 1}, {"gcc", 1},
                            {"xz", 1}};
        config.scale = 0.5;
        config.measure_ops = 600'000;

        PairedResult pair = run_paired(config);
        double improvement = pair.improvement_percent();
        improvements.push_back(improvement);
        std::printf("%-10s %14llu %14llu %+12.1f%%\n", name.c_str(),
                    static_cast<unsigned long long>(
                        pair.baseline.victim_cycles),
                    static_cast<unsigned long long>(
                        pair.ptemagnet.victim_cycles),
                    improvement);
    }

    std::printf("%-10s %14s %14s %+12.1f%%\n", "Geomean", "", "",
                geomean_improvement(improvements));
    std::printf("\npaper reference: 3%% average, 5%% max (mcf), never "
                "negative.\n");
    return 0;
}
