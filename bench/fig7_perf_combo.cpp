/**
 * @file
 * Reproduces Figure 7 (§6.1): performance improvement of PTEMagnet when
 * each benchmark shares the VM with the full combination of Table 3
 * co-runners (objdet, chameleon, pyaes, json_serdes, rnn_serving, gcc,
 * xz). The heavier cache contention erodes about 1% of the improvement
 * relative to Figure 6.
 *
 * Paper: +3% on average, up to +5% (mcf); never negative.
 */
#include <cstdio>

#include "sim/suite.hpp"
#include "workload/catalog.hpp"

int
main()
{
    using namespace ptm::sim;

    ExperimentSuite suite("fig7_perf_combo");
    for (const std::string &name : ptm::workload::benchmark_names()) {
        suite.add(name, ScenarioConfig{}
                            .with_victim(name)
                            .with_corunner_preset("combo")
                            .with_scale(0.5)
                            .with_measure_ops(600'000));
    }
    SuiteResult result = suite.run();

    std::printf("Figure 7: performance improvement under colocation with "
                "a combination of co-runners\n");
    print_improvement_table(result);
    std::printf("\npaper reference: 3%% average, 5%% max (mcf), never "
                "negative.\n");
    return 0;
}
