/**
 * @file
 * Ablation (DESIGN.md §7): reservation granularity. The paper fixes the
 * reservation at 8 pages because a 64-byte cache line holds exactly 8
 * PTEs; this bench sweeps 2/4/8/16/32-page reservations to show that 8
 * captures nearly all of the benefit — smaller groups leave hPTE lines
 * fragmented, larger groups add no further packing (one line is already
 * perfectly packed) while inflating reserved-but-unused memory.
 */
#include <cstdio>

#include "sim/experiment.hpp"

int
main()
{
    using namespace ptm::sim;

    std::printf("Ablation: reservation granularity (pagerank + objdet)\n");
    std::printf("%-12s %12s %14s %18s\n", "group pages", "frag",
                "improvement", "peak unused/RSS");

    ScenarioConfig config;
    config.victim = "pagerank";
    config.corunners = {{"objdet", 8}};
    config.scale = 0.5;
    config.measure_ops = 400'000;

    ScenarioResult baseline = run_scenario(config);

    for (unsigned pages : {2u, 4u, 8u, 16u, 32u}) {
        config.use_ptemagnet = true;
        config.reservation_pages = pages;
        ScenarioResult result = run_scenario(config);
        double base = static_cast<double>(baseline.victim_cycles);
        double ptm = static_cast<double>(result.victim_cycles);
        std::printf("%-12u %12.2f %+13.1f%% %17.3f%%\n", pages,
                    result.fragmentation.average_hpte_lines,
                    100.0 * (base - ptm) / base,
                    100.0 * result.peak_unused_reservation_fraction);
    }

    std::printf("\n(default kernel fragmentation: %.2f; the paper's "
                "design point is 8 pages = one\nPTE cache line — larger "
                "groups cannot pack a line any tighter.)\n",
                baseline.fragmentation.average_hpte_lines);
    return 0;
}
