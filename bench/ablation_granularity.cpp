/**
 * @file
 * Ablation (DESIGN.md §7): reservation granularity. The paper fixes the
 * reservation at 8 pages because a 64-byte cache line holds exactly 8
 * PTEs; this bench sweeps 2/4/8/16/32-page reservations to show that 8
 * captures nearly all of the benefit — smaller groups leave hPTE lines
 * fragmented, larger groups add no further packing (one line is already
 * perfectly packed) while inflating reserved-but-unused memory.
 */
#include <cstdio>

#include "sim/suite.hpp"

int
main()
{
    using namespace ptm::sim;

    ScenarioConfig base = ScenarioConfig{}
                              .with_victim("pagerank")
                              .with_corunner_preset("objdet8")
                              .with_scale(0.5)
                              .with_measure_ops(400'000);

    ExperimentSuite suite("ablation_granularity");
    suite.add("baseline", base, RunKind::Single);
    suite.sweep("pagerank", "reservation_pages", {2, 4, 8, 16, 32},
                ScenarioConfig(base).with_ptemagnet(), RunKind::Single);
    SuiteResult result = suite.run();

    std::printf("Ablation: reservation granularity (pagerank + objdet)\n");
    std::printf("%-12s %12s %14s %18s\n", "group pages", "frag",
                "improvement", "peak unused/RSS");

    const ScenarioResult &baseline = result.at("baseline").single;
    double base_cycles = static_cast<double>(baseline.victim_cycles);
    for (const EntryResult &entry : result.entries()) {
        if (entry.entry.sweep_param.empty())
            continue;
        const ScenarioResult &run = entry.single;
        double ptm_cycles = static_cast<double>(run.victim_cycles);
        std::printf("%-12u %12.2f %+13.1f%% %17.3f%%\n",
                    static_cast<unsigned>(entry.entry.sweep_value),
                    run.fragmentation.average_hpte_lines,
                    100.0 * (base_cycles - ptm_cycles) / base_cycles,
                    100.0 * run.peak_unused_reservation_fraction);
    }

    std::printf("\n(default kernel fragmentation: %.2f; the paper's "
                "design point is 8 pages = one\nPTE cache line — larger "
                "groups cannot pack a line any tighter.)\n",
                baseline.fragmentation.average_hpte_lines);
    return 0;
}
