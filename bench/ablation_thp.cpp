/**
 * @file
 * Ablation (paper §2.3): PTEMagnet vs a THP-like eager 2 MiB backing
 * policy vs the default kernel.
 *
 * Two experiments:
 *  1. Dense workload (pagerank + objdet): both alternatives restore
 *     contiguity, so both speed up walks — THP is not *worse* on this
 *     axis; the paper's argument against it is elsewhere.
 *  2. Sparse application (touches every 16th page of a large mapping):
 *     THP backs 512 frames per touched region (huge internal
 *     fragmentation), while PTEMagnet reserves only 8 — and can return
 *     even those under pressure. This is the §2.3/§6.2 memory-overhead
 *     argument, quantified.
 */
#include <cstdio>
#include <memory>

#include "core/ptemagnet_provider.hpp"
#include "sim/metrics.hpp"
#include "sim/system.hpp"
#include "vm/huge_page_provider.hpp"
#include "workload/catalog.hpp"

namespace {

using namespace ptm;

enum class Policy { Default, Ptemagnet, ThpLike };

const char *
policy_name(Policy policy)
{
    switch (policy) {
      case Policy::Default: return "default buddy";
      case Policy::Ptemagnet: return "PTEMagnet";
      case Policy::ThpLike: return "THP-like eager";
    }
    return "?";
}

void
dense_experiment()
{
    std::printf("Dense workload (pagerank + 8x objdet), 300k measured "
                "ops:\n");
    std::printf("%-16s %8s %14s %16s\n", "policy", "frag", "cycles/op",
                "victim rss pages");

    for (Policy policy :
         {Policy::Default, Policy::Ptemagnet, Policy::ThpLike}) {
        sim::PlatformConfig platform;
        sim::System system(platform, 9);
        if (policy == Policy::Ptemagnet) {
            system.enable_ptemagnet();
        } else if (policy == Policy::ThpLike) {
            system.guest().set_provider(
                std::make_unique<vm::HugePageProvider>(&system.guest()));
        }
        workload::WorkloadOptions options;
        options.scale = 0.5;
        sim::Job &victim =
            system.add_job(workload::make_workload("pagerank", options));
        for (unsigned worker = 0; worker < 8; ++worker) {
            workload::WorkloadOptions co = options;
            co.seed = 1001 + worker;
            system.add_job(workload::make_workload("objdet", co));
        }
        system.run_until_init_done(victim);
        system.reset_measurement();
        system.run_ops(victim, 300'000);

        double frag = sim::host_pt_fragmentation(victim.process(),
                                                 system.vm())
                          .average_hpte_lines;
        double cpo =
            static_cast<double>(victim.counters().cycles.value()) /
            static_cast<double>(victim.counters().ops.value());
        std::printf("%-16s %8.2f %14.1f %16llu\n", policy_name(policy),
                    frag, cpo,
                    static_cast<unsigned long long>(
                        victim.process().rss_pages()));
    }
}

void
sparse_experiment()
{
    std::printf("\nSparse application: 32 MiB mapping, every 16th page "
                "touched:\n");
    std::printf("%-16s %14s %18s %22s\n", "policy", "touched",
                "frames consumed", "overhead vs touched");

    for (Policy policy :
         {Policy::Default, Policy::Ptemagnet, Policy::ThpLike}) {
        vm::GuestKernel guest(64 * 1024);
        core::PtemagnetProvider *magnet = nullptr;
        if (policy == Policy::Ptemagnet) {
            auto provider =
                std::make_unique<core::PtemagnetProvider>(&guest);
            magnet = provider.get();
            guest.set_provider(std::move(provider));
        } else if (policy == Policy::ThpLike) {
            guest.set_provider(
                std::make_unique<vm::HugePageProvider>(&guest));
        }

        vm::Process &app = guest.create_process("sparse");
        Addr base = app.vas().mmap(32ull * 1024 * 1024);
        std::uint64_t touched = 0;
        for (std::uint64_t page = 0; page < 8192; page += 16) {
            if (!app.page_table().lookup(page_number(base) + page))
                guest.handle_fault(app, page_number(base) + page);
            ++touched;
        }

        std::uint64_t consumed =
            guest.buddy().allocated_frames_count();
        std::printf("%-16s %14llu %18llu %21.1fx\n", policy_name(policy),
                    static_cast<unsigned long long>(touched),
                    static_cast<unsigned long long>(consumed),
                    static_cast<double>(consumed) /
                        static_cast<double>(touched));

        if (magnet != nullptr) {
            std::uint64_t reclaimed = magnet->reclaim(1u << 30);
            std::printf("%-16s reservation daemon can return %llu frames "
                        "under pressure\n", "",
                        static_cast<unsigned long long>(reclaimed));
        }
    }
    std::printf("\n(the THP consumed count includes 512 frames per "
                "touched 2 MiB region —\nthe internal fragmentation that "
                "keeps THP disabled in clouds, §2.3; PTEMagnet's\n"
                "8-frame reservations cost 16x less and are reclaimable "
                "without PT surgery.)\n");
}

}  // namespace

int
main()
{
    std::printf("Ablation: PTEMagnet vs THP-like eager backing\n\n");
    dense_experiment();
    sparse_experiment();
    return 0;
}
