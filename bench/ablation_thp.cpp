/**
 * @file
 * Ablation (paper §2.3): PTEMagnet vs a THP-like eager 2 MiB backing
 * policy vs the default kernel.
 *
 * Two experiments:
 *  1. Dense workload (pagerank + objdet): both alternatives restore
 *     contiguity, so both speed up walks — THP is not *worse* on this
 *     axis; the paper's argument against it is elsewhere.
 *  2. Sparse application (touches every 16th page of a large mapping):
 *     THP backs 512 frames per touched region (huge internal
 *     fragmentation), while PTEMagnet reserves only 8 — and can return
 *     even those under pressure. This is the §2.3/§6.2 memory-overhead
 *     argument, quantified.
 */
#include <cstdio>
#include <memory>
#include <string>

#include "core/ptemagnet_provider.hpp"
#include "sim/suite.hpp"
#include "vm/provider_factory.hpp"

namespace {

using namespace ptm;

/// Display label of each swept factory-name policy.
const char *
policy_label(const std::string &policy)
{
    if (policy == "buddy")
        return "default buddy";
    if (policy == "ptemagnet")
        return "PTEMagnet";
    if (policy == "thp")
        return "THP-like eager";
    return policy.c_str();
}

const char *const kPolicies[] = {"buddy", "ptemagnet", "thp"};

void
dense_experiment()
{
    using namespace ptm::sim;

    ExperimentSuite suite("ablation_thp");
    for (const char *policy : kPolicies) {
        suite.add(policy_label(policy),
                  ScenarioConfig{}
                      .with_victim("pagerank")
                      .with_corunner_preset("objdet8")
                      .with_policy(policy)
                      .with_scale(0.5)
                      .with_measure_ops(300'000)
                      .with_warmup_ops(0),
                  RunKind::Single);
    }
    SuiteResult result = suite.run();

    std::printf("Dense workload (pagerank + 8x objdet), 300k measured "
                "ops:\n");
    std::printf("%-16s %8s %14s %16s\n", "policy", "frag", "cycles/op",
                "victim rss pages");
    for (const EntryResult &entry : result.entries()) {
        const ScenarioResult &run = entry.single;
        double cpo = static_cast<double>(run.victim_cycles) /
                     static_cast<double>(run.victim_ops);
        std::printf("%-16s %8.2f %14.1f %16llu\n",
                    entry.entry.name.c_str(),
                    run.fragmentation.average_hpte_lines, cpo,
                    static_cast<unsigned long long>(run.victim_rss_pages));
    }
}

/**
 * Not a scenario: drives a bare GuestKernel to count frames consumed for
 * a sparse mapping under each provider, outside any measurement loop.
 */
void
sparse_experiment()
{
    std::printf("\nSparse application: 32 MiB mapping, every 16th page "
                "touched:\n");
    std::printf("%-16s %14s %18s %22s\n", "policy", "touched",
                "frames consumed", "overhead vs touched");

    for (const std::string policy : kPolicies) {
        vm::GuestKernel guest(64 * 1024);
        core::PtemagnetProvider *magnet = nullptr;
        if (policy != "buddy") {
            auto provider = vm::make_provider(policy, &guest, {});
            magnet =
                dynamic_cast<core::PtemagnetProvider *>(provider.get());
            guest.set_provider(std::move(provider));
        }

        vm::Process &app = guest.create_process("sparse");
        Addr base = app.vas().mmap(32ull * 1024 * 1024);
        std::uint64_t touched = 0;
        for (std::uint64_t page = 0; page < 8192; page += 16) {
            if (!app.page_table().lookup(page_number(base) + page))
                guest.handle_fault(app, page_number(base) + page);
            ++touched;
        }

        std::uint64_t consumed =
            guest.buddy().allocated_frames_count();
        std::printf("%-16s %14llu %18llu %21.1fx\n", policy_label(policy),
                    static_cast<unsigned long long>(touched),
                    static_cast<unsigned long long>(consumed),
                    static_cast<double>(consumed) /
                        static_cast<double>(touched));

        if (magnet != nullptr) {
            std::uint64_t reclaimed = magnet->reclaim(1u << 30);
            std::printf("%-16s reservation daemon can return %llu frames "
                        "under pressure\n", "",
                        static_cast<unsigned long long>(reclaimed));
        }
    }
    std::printf("\n(the THP consumed count includes 512 frames per "
                "touched 2 MiB region —\nthe internal fragmentation that "
                "keeps THP disabled in clouds, §2.3; PTEMagnet's\n"
                "8-frame reservations cost 16x less and are reclaimable "
                "without PT surgery.)\n");
}

}  // namespace

int
main()
{
    std::printf("Ablation: PTEMagnet vs THP-like eager backing\n\n");
    dense_experiment();
    sparse_experiment();
    return 0;
}
