/**
 * @file
 * Memory-pressure reclaim sweep (extends §6.2 / §4.3): how PTEMagnet
 * behaves when the reclamation daemon keeps shooting down its parked
 * reservations.
 *
 * The sweep arms a periodic FaultPlan pressure episode — one reclaim
 * sweep every `pressure_every` handled guest faults, with 0 as the
 * unarmed control — and reports, per intensity: frames reclaimed,
 * sweeps executed, single-frame fallbacks the provider was forced into,
 * and the execution-time improvement that survives. The paper's claim is
 * qualitative: reservations are short-lived (§6.2), so even aggressive
 * reclamation mostly finds nothing to take and PTEMagnet degrades toward
 * the buddy baseline instead of breaking.
 */
#include <cstdio>

#include "sim/suite.hpp"

int
main()
{
    using namespace ptm::sim;

    ScenarioConfig base = ScenarioConfig{}
                              .with_victim("pagerank")
                              .with_corunner_preset("objdet8")
                              .with_scale(0.5)
                              .with_measure_ops(400'000);

    ExperimentSuite suite("pressure_reclaim");
    // Intensity axis, most to least relaxed; 0 = no injected pressure.
    suite.sweep("pagerank", "pressure_every",
                {0, 50'000, 20'000, 5'000, 1'000}, base);

    // Co-residency axis: the same pressured victim with 1 vs 4 VMs
    // sharing the host buddy. Extra guests fragment host PT allocation
    // between sweeps, so this isolates how much of the reclaim cost is
    // the victim's own versus inter-VM interference.
    ScenarioConfig colocated = ScenarioConfig(base).with_fault_plan(
        FaultPlan{}.periodic_pressure(5'000));
    suite.sweep("pagerank_pressured", "vms", {1, 4}, colocated);

    SuiteResult result = suite.run();

    std::printf("Memory-pressure reclaim sweep (pagerank + objdet8)\n");
    std::printf("%-26s %10s %8s %10s %10s %12s\n", "entry", "reclaimed",
                "sweeps", "fallbacks", "PaRT hits", "improvement");
    for (const EntryResult &entry : result.entries()) {
        if (entry.failed()) {
            std::printf("%-26s %10s %8s %10s %10s %12s\n",
                        entry.entry.name.c_str(), "-", "-", "-", "-",
                        "FAILED");
            continue;
        }
        const ScenarioResult &run = entry.paired.ptemagnet;
        std::printf("%-26s %10llu %8llu %10llu %10llu %+11.1f%%\n",
                    entry.entry.name.c_str(),
                    static_cast<unsigned long long>(run.frames_reclaimed),
                    static_cast<unsigned long long>(run.reclaim_sweeps),
                    static_cast<unsigned long long>(run.fallback_singles),
                    static_cast<unsigned long long>(run.part_hits),
                    entry.improvement_percent());
    }

    std::printf("\nexpectation: reclaimed frames stay small relative to "
                "RSS (reservations are\nshort-lived, §6.2) and the "
                "improvement decays gracefully with intensity —\n"
                "fallback singles replace reservations, never failed "
                "faults.\n");
    return 0;
}
