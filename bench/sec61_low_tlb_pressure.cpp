/**
 * @file
 * Reproduces the unnumbered §6.1 result: on SPEC'17 Int applications
 * that exhibit little TLB pressure, PTEMagnet delivers only 0-1%
 * improvement — and, critically for cloud deployment, *never* a
 * slowdown. This is the "overhead-free" property that lets PTEMagnet be
 * enabled unconditionally.
 */
#include <cstdio>

#include "sim/suite.hpp"
#include "workload/catalog.hpp"

int
main()
{
    using namespace ptm::sim;

    ExperimentSuite suite("sec61_low_tlb_pressure");
    for (const std::string &name : ptm::workload::low_pressure_names()) {
        suite.add(name, ScenarioConfig{}
                            .with_victim(name)
                            .with_corunner_preset("objdet8")
                            .with_scale(0.5)
                            .with_measure_ops(400'000));
    }
    SuiteResult result = suite.run();

    std::printf("Section 6.1: low-TLB-pressure SPEC'17 Int class under "
                "colocation with objdet\n");
    print_improvement_table(result, /*name_width=*/12);

    bool any_regression = false;
    for (double improvement : result.improvements())
        any_regression |= improvement < -0.25;
    std::printf("\n%s\n",
                any_regression
                    ? "REGRESSION DETECTED — violates the paper's claim!"
                    : "no slowdowns: PTEMagnet is safe to enable "
                      "unconditionally (paper: 0-1%% gains here).");
    return 0;
}
