/**
 * @file
 * Reproduces the unnumbered §6.1 result: on SPEC'17 Int applications
 * that exhibit little TLB pressure, PTEMagnet delivers only 0-1%
 * improvement — and, critically for cloud deployment, *never* a
 * slowdown. This is the "overhead-free" property that lets PTEMagnet be
 * enabled unconditionally.
 */
#include <cstdio>
#include <vector>

#include "sim/experiment.hpp"
#include "workload/catalog.hpp"

int
main()
{
    using namespace ptm::sim;

    std::printf("Section 6.1: low-TLB-pressure SPEC'17 Int class under "
                "colocation with objdet\n");
    std::printf("%-12s %14s %14s %13s\n", "benchmark", "base cycles",
                "ptm cycles", "improvement");

    bool any_regression = false;
    std::vector<double> improvements;
    for (const std::string &name : ptm::workload::low_pressure_names()) {
        ScenarioConfig config;
        config.victim = name;
        config.corunners = {{"objdet", 8}};
        config.scale = 0.5;
        config.measure_ops = 400'000;

        PairedResult pair = run_paired(config);
        double improvement = pair.improvement_percent();
        improvements.push_back(improvement);
        any_regression |= improvement < -0.25;
        std::printf("%-12s %14llu %14llu %+12.2f%%\n", name.c_str(),
                    static_cast<unsigned long long>(
                        pair.baseline.victim_cycles),
                    static_cast<unsigned long long>(
                        pair.ptemagnet.victim_cycles),
                    improvement);
    }
    std::printf("%-12s %14s %14s %+12.2f%%\n", "Geomean", "", "",
                geomean_improvement(improvements));
    std::printf("\n%s\n",
                any_regression
                    ? "REGRESSION DETECTED — violates the paper's claim!"
                    : "no slowdowns: PTEMagnet is safe to enable "
                      "unconditionally (paper: 0-1%% gains here).");
    return 0;
}
