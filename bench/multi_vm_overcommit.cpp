/**
 * @file
 * Multi-VM overcommit bench: co-resident VMs on one overcommitted host,
 * exercising the survival ladder (balloon sweeps, reclaim backoff,
 * deterministic OOM-kill) and the seeded churn-storm engine.
 *
 * Two modes:
 *
 * - default: an ExperimentSuite with a `vms` co-residency sweep plus a
 *   64-VM boot/kill/fork storm, emitting per-VM robustness blocks
 *   (balloon pages, reclaim sweeps, backoff waits, OOM kills, survivor
 *   walk cycles) into BENCH_multi_vm_overcommit.json — the slow bench
 *   tier, run manually.
 * - `--storm-smoke`: the tier-1 ctest (`churn_storm_smoke`). Runs the
 *   64-VM storm under armed overcommit pressure, asserts the host
 *   survived with >=1 deterministic OOM-kill, and checks the full
 *   result is bit-identical across repeats and across suite thread
 *   counts (1 vs 4). Exits nonzero on any violation.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/suite.hpp"

namespace {

using namespace ptm::sim;

int failures = 0;

void
check(bool ok, const char *what)
{
    if (!ok) {
        std::fprintf(stderr, "multi_vm_overcommit: FAIL: %s\n", what);
        ++failures;
    }
}

/// Co-residency base: one victim plus (vms - 1) stress-ng guests on a
/// host sized so ~4 VMs overcommit it, watermark reclaim armed.
ScenarioConfig
colocate_config()
{
    ScenarioConfig config = ScenarioConfig{}
                                .with_victim("stress-ng")
                                .with_scale(0.5)
                                .with_measure_ops(60'000)
                                .with_warmup_ops(0);
    config.platform.guest_frames = 4096;
    config.platform.host_frames = 8 * 1024;
    config.with_overcommit(OvercommitPolicy{}
                               .with_watermarks(128, 256)
                               .with_balloon_step(64)
                               .with_backoff(4, 64));
    return config;
}

/**
 * The acceptance scenario: 64 VM boots, 24 kills, and 8 forks storm a
 * host with far fewer frames than the peak co-resident footprint, with
 * periodic guest reclaim pressure armed on top. The ladder must keep the
 * protected victim VM alive — shedding load through balloons first,
 * OOM-kills when sweeps run dry.
 */
ScenarioConfig
storm_config()
{
    ScenarioConfig config = ScenarioConfig{}
                                .with_victim("stress-ng")
                                .with_scale(0.4)
                                .with_measure_ops(40'000)
                                .with_warmup_ops(0);
    config.platform.guest_frames = 8192;
    config.platform.host_frames = 16 * 1024;
    config.with_overcommit(OvercommitPolicy{}
                               .with_watermarks(256, 512)
                               .with_balloon_step(128)
                               .with_backoff(4, 64));
    config.with_churn(ChurnPlan::storm(/*seed=*/41, /*begin_step=*/500,
                                       /*end_step=*/60'000, /*boots=*/64,
                                       /*kills=*/24, /*forks=*/8)
                          .with_scale(0.1)
                          .with_guest_frames(2048));
    config.with_fault_plan(FaultPlan{}.periodic_pressure(20'000));
    return config;
}

void
print_robustness(const char *name, const ScenarioResult &result)
{
    std::printf(
        "%-24s oom_kills=%llu sweeps=%llu(+%llu emergency) "
        "backoff_waits=%llu balloon_pages=%llu boots=%llu kills=%llu "
        "forks=%llu\n",
        name, (unsigned long long)result.oom_kills,
        (unsigned long long)result.host_reclaim_sweeps,
        (unsigned long long)result.host_emergency_sweeps,
        (unsigned long long)result.host_backoff_waits,
        (unsigned long long)result.host_balloon_pages,
        (unsigned long long)result.churn_boots,
        (unsigned long long)result.churn_kills,
        (unsigned long long)result.churn_forks);
    for (const VmRecord &vm : result.vms) {
        std::printf("    vm%-3u %-12s balloon=%-6llu backed=%-6llu "
                    "walk_cycles=%-12llu ops=%llu\n",
                    vm.vm, vm.status.c_str(),
                    (unsigned long long)vm.balloon_pages,
                    (unsigned long long)vm.backed_pages,
                    (unsigned long long)vm.walk_cycles,
                    (unsigned long long)vm.ops);
    }
}

/// Field-by-field equality over everything the robustness block exports.
bool
same_result(const ScenarioResult &a, const ScenarioResult &b,
            const char *what)
{
    bool ok = a.victim_ops == b.victim_ops &&
              a.victim_cycles == b.victim_cycles &&
              a.oom_kills == b.oom_kills &&
              a.churn_boots == b.churn_boots &&
              a.churn_kills == b.churn_kills &&
              a.churn_forks == b.churn_forks &&
              a.churn_boot_failures == b.churn_boot_failures &&
              a.host_reclaim_sweeps == b.host_reclaim_sweeps &&
              a.host_emergency_sweeps == b.host_emergency_sweeps &&
              a.host_backoff_waits == b.host_backoff_waits &&
              a.host_balloon_pages == b.host_balloon_pages &&
              a.host_frames_unbacked == b.host_frames_unbacked &&
              a.vms.size() == b.vms.size();
    if (ok) {
        for (std::size_t i = 0; i < a.vms.size(); ++i) {
            ok = ok && a.vms[i].status == b.vms[i].status &&
                 a.vms[i].balloon_pages == b.vms[i].balloon_pages &&
                 a.vms[i].backed_pages == b.vms[i].backed_pages &&
                 a.vms[i].frames_repossessed ==
                     b.vms[i].frames_repossessed &&
                 a.vms[i].walk_cycles == b.vms[i].walk_cycles &&
                 a.vms[i].ops == b.vms[i].ops;
        }
    }
    check(ok, what);
    return ok;
}

/// Tier-1 acceptance run: survive the storm, deterministically.
int
storm_smoke()
{
    const ScenarioConfig config = storm_config();

    ScenarioResult first = run_scenario(config);
    print_robustness("storm64 (serial)", first);
    check(first.churn_boots >= 32,
          "the storm actually booted a VM fleet");
    check(first.oom_kills >= 1, "host pressure forced >=1 OOM-kill");
    check(first.host_reclaim_sweeps >= 1, "reclaim daemon swept");
    check(!first.vms.empty() && first.vms[0].status == "alive",
          "the protected primary VM survived");
    check(first.vms.size() == 1 + first.churn_boots,
          "every booted VM has a per-VM record");
    std::uint64_t oom_records = 0;
    for (const VmRecord &vm : first.vms)
        oom_records += vm.status == "oom_killed" ? 1 : 0;
    check(oom_records == first.oom_kills,
          "every OOM-kill surfaced as a degradation record");

    ScenarioResult second = run_scenario(config);
    same_result(first, second, "repeat run is bit-identical");

    // Thread-count invariance: the same entry, run concurrently with a
    // sibling on 1- and 4-thread suite pools, must match the serial run.
    for (unsigned threads : {1u, 4u}) {
        ExperimentSuite suite("multi_vm_storm_smoke");
        suite.add("storm", config, RunKind::Single);
        suite.add("storm-echo", config, RunKind::Single);
        SuiteOptions options;
        options.threads = threads;
        options.write_json = false;
        options.announce = false;
        SuiteResult result = suite.run(options);
        check(!result.at("storm").failed(), "suite storm leg completed");
        same_result(first, result.at("storm").single,
                    "suite run matches the serial run");
        same_result(first, result.at("storm-echo").single,
                    "concurrent sibling matches the serial run");
    }

    if (failures == 0)
        std::printf("storm smoke OK: %llu boots, %llu OOM-kills, "
                    "identical across repeats and 1/4-thread suites\n",
                    (unsigned long long)first.churn_boots,
                    (unsigned long long)first.oom_kills);
    return failures == 0 ? EXIT_SUCCESS : EXIT_FAILURE;
}

}  // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "--storm-smoke") == 0)
        return storm_smoke();

    ExperimentSuite suite("multi_vm_overcommit");
    suite.sweep("colocate", "vms", {1, 2, 4, 6}, colocate_config(),
                RunKind::Single);
    suite.add("storm64", storm_config(), RunKind::Single);

    SuiteOptions options;
    options.json_dir = ".";
    SuiteResult result = suite.run(options);

    std::printf("\n== multi_vm_overcommit: per-VM robustness ==\n");
    for (const EntryResult &entry : result.entries()) {
        if (entry.failed()) {
            std::printf("%-24s FAILED: %s\n", entry.entry.name.c_str(),
                        entry.error.c_str());
            continue;
        }
        print_robustness(entry.entry.name.c_str(), entry.single);
    }
    return EXIT_SUCCESS;
}
