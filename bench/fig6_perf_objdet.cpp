/**
 * @file
 * Reproduces Figure 6 (§6.1): performance improvement of PTEMagnet over
 * the default kernel for the eight benchmarks colocated with 8-threaded
 * objdet (the co-runner with the highest page-fault rate), plus the
 * geomean bar.
 *
 * Paper: +4% on average, up to +9% (xz); no benchmark ever slows down.
 */
#include <cstdio>

#include "sim/suite.hpp"
#include "workload/catalog.hpp"

int
main()
{
    using namespace ptm::sim;

    ExperimentSuite suite("fig6_perf_objdet");
    for (const std::string &name : ptm::workload::benchmark_names()) {
        suite.add(name, ScenarioConfig{}
                            .with_victim(name)
                            .with_corunner_preset("objdet8")
                            .with_scale(0.5)
                            .with_measure_ops(600'000));
    }
    SuiteResult result = suite.run();

    std::printf("Figure 6: performance improvement under colocation with "
                "objdet\n");
    print_improvement_table(result);
    std::printf("\npaper reference: 4%% average, 9%% max (xz), never "
                "negative.\n");
    return 0;
}
