/**
 * @file
 * Reproduces Figure 6 (§6.1): performance improvement of PTEMagnet over
 * the default kernel for the eight benchmarks colocated with 8-threaded
 * objdet (the co-runner with the highest page-fault rate), plus the
 * geomean bar.
 *
 * Paper: +4% on average, up to +9% (xz); no benchmark ever slows down.
 */
#include <cstdio>
#include <vector>

#include "sim/experiment.hpp"
#include "workload/catalog.hpp"

int
main()
{
    using namespace ptm::sim;

    std::printf("Figure 6: performance improvement under colocation with "
                "objdet\n");
    std::printf("%-10s %14s %14s %13s\n", "benchmark", "base cycles",
                "ptm cycles", "improvement");

    std::vector<double> improvements;
    for (const std::string &name : ptm::workload::benchmark_names()) {
        ScenarioConfig config;
        config.victim = name;
        config.corunners = {{"objdet", 8}};
        config.scale = 0.5;
        config.measure_ops = 600'000;

        PairedResult pair = run_paired(config);
        double improvement = pair.improvement_percent();
        improvements.push_back(improvement);
        std::printf("%-10s %14llu %14llu %+12.1f%%\n", name.c_str(),
                    static_cast<unsigned long long>(
                        pair.baseline.victim_cycles),
                    static_cast<unsigned long long>(
                        pair.ptemagnet.victim_cycles),
                    improvement);
    }

    std::printf("%-10s %14s %14s %+12.1f%%\n", "Geomean", "", "",
                geomean_improvement(improvements));
    std::printf("\npaper reference: 4%% average, 9%% max (xz), never "
                "negative.\n");
    return 0;
}
