/**
 * @file
 * The paper's §3.3 motivating experiment as a narrated walk-through:
 * pagerank sharing a VM with a 12-worker stress-ng churner, built
 * directly against the System API (no experiment-runner sugar), showing
 * how fragmentation arises during the allocation phase and what it costs
 * afterwards — then the same run under PTEMagnet.
 *
 * Run: ./build/examples/colocated_vm
 */
#include <cstdio>

#include "sim/metrics.hpp"
#include "sim/system.hpp"
#include "workload/catalog.hpp"

namespace {

struct Outcome {
    double frag = 0.0;
    double cycles_per_op = 0.0;
    double walk_share = 0.0;
    std::uint64_t buddy_calls = 0;
};

Outcome
run(bool use_ptemagnet)
{
    using namespace ptm;

    sim::PlatformConfig platform;
    sim::System system(platform, 13);  // victim + 12 stress workers
    if (use_ptemagnet)
        system.enable_ptemagnet();

    workload::WorkloadOptions options;
    options.scale = 0.5;
    sim::Job &victim =
        system.add_job(workload::make_workload("pagerank", options));
    for (unsigned worker = 0; worker < 12; ++worker) {
        workload::WorkloadOptions worker_options = options;
        worker_options.seed = 100 + worker;
        system.add_job(workload::make_workload("stress-ng",
                                               worker_options));
    }

    // Allocation phase: pagerank initializes its arrays while stress-ng
    // churns; every pagerank page fault races 12 other allocators.
    system.run_until_init_done(victim);
    std::printf("  allocation done: rss=%llu pages, guest faults=%llu\n",
                static_cast<unsigned long long>(
                    victim.process().rss_pages()),
                static_cast<unsigned long long>(
                    system.guest().stats().faults_handled.value()));

    // Stop the churner (Table 1 protocol) and measure clean.
    for (auto &job : system.jobs()) {
        if (job.get() != &victim)
            job->set_paused(true);
    }
    system.reset_measurement();
    system.run_ops(victim, 400'000);

    Outcome outcome;
    outcome.frag = sim::host_pt_fragmentation(victim.process(),
                                              system.vm())
                       .average_hpte_lines;
    outcome.cycles_per_op =
        static_cast<double>(victim.stats().cycles.value()) /
        static_cast<double>(victim.stats().ops.value());
    outcome.walk_share =
        static_cast<double>(victim.walker().stats().walk_cycles.value()) /
        static_cast<double>(victim.stats().cycles.value());
    outcome.buddy_calls =
        system.guest().buddy().stats().alloc_calls.value();
    return outcome;
}

}  // namespace

int
main()
{
    std::printf("pagerank + 12x stress-ng in one VM "
                "(co-runner stopped before measurement)\n\n");

    std::printf("default Linux allocator:\n");
    Outcome baseline = run(false);
    std::printf("PTEMagnet:\n");
    Outcome magnet = run(true);

    std::printf("\n%-26s %12s %12s\n", "", "default", "ptemagnet");
    std::printf("%-26s %12.2f %12.2f\n", "host PT fragmentation",
                baseline.frag, magnet.frag);
    std::printf("%-26s %12.1f %12.1f\n", "cycles per operation",
                baseline.cycles_per_op, magnet.cycles_per_op);
    std::printf("%-26s %11.1f%% %11.1f%%\n", "page-walk cycle share",
                100.0 * baseline.walk_share, 100.0 * magnet.walk_share);
    std::printf("%-26s %12llu %12llu\n", "buddy allocator calls",
                static_cast<unsigned long long>(baseline.buddy_calls),
                static_cast<unsigned long long>(magnet.buddy_calls));
    std::printf("\nspeedup from PTEMagnet: %.1f%%\n",
                100.0 * (baseline.cycles_per_op - magnet.cycles_per_op) /
                    baseline.cycles_per_op);
    return 0;
}
