/**
 * @file
 * Drives PTEMagnet's data structures directly: reservation life-cycle in
 * PaRT (create, claim, full-deletion), free()-path release, the
 * memory-pressure reclamation daemon, and the fork rule — printing the
 * occupancy masks at each step. The kernel and provider are wired into a
 * stat registry and a trace sink, so the run ends with the same
 * observability report a full System produces.
 *
 * Run: ./build/examples/reservation_inspector
 */
#include <cstdio>
#include <string>

#include "core/ptemagnet_provider.hpp"
#include "obs/stat_registry.hpp"
#include "obs/trace_sink.hpp"
#include "vm/guest_kernel.hpp"

namespace {

using namespace ptm;

std::string
mask_string(std::uint32_t mask)
{
    std::string bits;
    for (unsigned i = 0; i < 8; ++i)
        bits += (mask & (1u << i)) ? 'M' : '.';
    return bits;
}

void
dump(const core::PtemagnetProvider &provider, const vm::Process &proc,
     std::uint64_t group_lo, std::uint64_t group_hi)
{
    const core::Part *part = provider.part_of(proc.pid());
    if (part == nullptr) {
        std::printf("    (no reservation map)\n");
        return;
    }
    for (std::uint64_t group = group_lo; group <= group_hi; ++group) {
        auto view = part->find(group);
        if (view) {
            std::printf("    group %-4llu base gfn %-6llu mask %s\n",
                        static_cast<unsigned long long>(group),
                        static_cast<unsigned long long>(view->base_gfn),
                        mask_string(view->mask).c_str());
        } else {
            std::printf("    group %-4llu (no live reservation)\n",
                        static_cast<unsigned long long>(group));
        }
    }
    std::printf("    live=%llu reserved-unmapped=%llu pages\n",
                static_cast<unsigned long long>(part->live_reservations()),
                static_cast<unsigned long long>(
                    part->unmapped_reserved_pages()));
}

}  // namespace

int
main()
{
    vm::GuestKernel guest(4096);
    auto owned = std::make_unique<core::PtemagnetProvider>(&guest);
    core::PtemagnetProvider &provider = *owned;
    guest.set_provider(std::move(owned));

    // The same wiring System does: every kernel/provider counter under a
    // hierarchical path, and fault/reclaim events into a trace sink.
    obs::StatRegistry registry;
    obs::TraceSink sink;
    guest.register_stats(registry, "vm0");
    provider.register_stats(registry, "vm0.provider");
    guest.set_trace_sink(&sink);

    vm::Process &app = guest.create_process("app");
    Addr base = app.vas().mmap(2 * kReservationBytes);
    std::uint64_t gvpn = page_number(base);
    std::uint64_t group = gvpn / kPagesPerReservation;

    std::printf("1. first fault in a 32 KiB group reserves 8 frames, "
                "maps 1:\n");
    guest.handle_fault(app, gvpn + 2);
    dump(provider, app, group, group + 1);

    std::printf("\n2. later faults are PaRT hits (no buddy calls):\n");
    guest.handle_fault(app, gvpn + 0);
    guest.handle_fault(app, gvpn + 5);
    dump(provider, app, group, group + 1);

    std::printf("\n3. free() returns a page to its reservation:\n");
    guest.free_page(app, gvpn + 5);
    dump(provider, app, group, group + 1);

    std::printf("\n4. filling all 8 pages deletes the entry "
                "(tracking no longer needed):\n");
    for (unsigned i = 0; i < 8; ++i) {
        if (!app.page_table().lookup(gvpn + i))
            guest.handle_fault(app, gvpn + i);
    }
    dump(provider, app, group, group + 1);

    std::printf("\n5. a second group, then memory-pressure reclamation "
                "returns the unused frames:\n");
    guest.handle_fault(app, gvpn + 8);  // one page of the next group
    dump(provider, app, group, group + 1);
    std::uint64_t freed = provider.reclaim(1'000'000);
    std::printf("    daemon reclaimed %llu frames\n",
                static_cast<unsigned long long>(freed));
    dump(provider, app, group, group + 1);

    std::printf("\n6. fork: the child is served from the parent's "
                "reservation map:\n");
    vm::Process &parent = guest.create_process("parent");
    Addr parent_base = parent.vas().mmap(kReservationBytes);
    std::uint64_t parent_vpn = page_number(parent_base);
    guest.handle_fault(parent, parent_vpn);
    vm::Process &child = guest.fork(parent);
    guest.handle_fault(child, parent_vpn + 1);
    std::uint64_t parent_gfn =
        parent.page_table().lookup(parent_vpn)->frame();
    std::uint64_t child_gfn =
        child.page_table().lookup(parent_vpn + 1)->frame();
    std::printf("    parent page -> gfn %llu, child page -> gfn %llu "
                "(contiguous: %s)\n",
                static_cast<unsigned long long>(parent_gfn),
                static_cast<unsigned long long>(child_gfn),
                child_gfn == parent_gfn + 1 ? "yes" : "no");
    std::printf("    child faults served from parent map: %llu\n",
                static_cast<unsigned long long>(
                    provider.stats().child_served_by_parent.value()));

    std::printf("\n7. what the observability layer saw:\n");
    obs::StatSnapshot snap = registry.snapshot();
    for (const char *path :
         {"vm0.kernel.faults_handled", "vm0.kernel.pages_mapped",
          "vm0.kernel.frames_reclaimed", "vm0.buddy.alloc_calls",
          "vm0.provider.part_hits", "vm0.provider.reservations_created",
          "vm0.provider.child_served_by_parent"}) {
        std::printf("    %-38s %llu\n", path,
                    static_cast<unsigned long long>(snap.value(path)));
    }
    const obs::HistogramSummary &lat =
        snap.histogram("vm0.kernel.fault_latency");
    std::printf("    %-38s p50=%llu p99=%llu cycles\n",
                "vm0.kernel.fault_latency",
                static_cast<unsigned long long>(lat.p50),
                static_cast<unsigned long long>(lat.p99));
    std::printf("    trace sink captured %zu guest_fault events\n",
                sink.size());
    return 0;
}
