/**
 * @file
 * General-purpose scenario runner: compose any victim/co-runner
 * colocation from the command line and get the paper's metric set for
 * the default kernel vs PTEMagnet, plus a machine-readable
 * BENCH_run_experiment.json. This is the "drive the library yourself"
 * entry point for experiments the benches don't cover.
 *
 * Usage:
 *   run_experiment [options]
 *     --victim NAME         benchmark to measure      (default pagerank)
 *     --co NAME[xCOUNT]     add a co-runner; repeatable (default objdetx8)
 *     --preset NAME         use a named co-runner preset (none, objdet8,
 *                           combo, stressng12)
 *     --scale F             footprint multiplier       (default 0.5)
 *     --ops N               measured victim operations (default 400000)
 *     --seed N              scenario seed              (default 1)
 *     --group-pages N       reservation granularity    (default 8)
 *     --threads N           suite worker threads       (default: cores)
 *     --stop-after-init     pause co-runners before measuring (Table 1)
 *
 * Example:
 *   ./build/examples/run_experiment --victim xz --co stress-ngx12 \
 *       --scale 0.25 --ops 200000
 */
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "sim/suite.hpp"

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--victim NAME] [--co NAME[xCOUNT]]... "
                 "[--preset NAME] [--scale F]\n"
                 "          [--ops N] [--seed N] [--group-pages N] "
                 "[--threads N] [--stop-after-init]\n",
                 argv0);
    std::exit(1);
}

ptm::sim::CorunnerSpec
parse_corunner(const std::string &spec)
{
    std::size_t x = spec.rfind('x');
    if (x != std::string::npos && x + 1 < spec.size() &&
        std::isdigit(static_cast<unsigned char>(spec[x + 1]))) {
        return {spec.substr(0, x),
                static_cast<unsigned>(std::stoul(spec.substr(x + 1)))};
    }
    return {spec, 1};
}

}  // namespace

int
main(int argc, char **argv)
{
    using namespace ptm::sim;

    ScenarioConfig config =
        ScenarioConfig{}.with_scale(0.5).with_measure_ops(400'000);
    SuiteOptions options;
    bool co_given = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--victim") {
            try {
                config.with_workload(next());  // fail fast on unknown names
            } catch (const ptm::SimError &e) {
                std::fprintf(stderr, "fatal: %s\n", e.what());
                return 1;
            }
        } else if (arg == "--co") {
            config.corunners.push_back(parse_corunner(next()));
            co_given = true;
        } else if (arg == "--preset") {
            config.with_corunner_preset(next());
            co_given = true;
        } else if (arg == "--scale") {
            config.with_scale(std::atof(next()));
        } else if (arg == "--ops") {
            config.with_measure_ops(std::strtoull(next(), nullptr, 10));
        } else if (arg == "--seed") {
            config.with_seed(std::strtoull(next(), nullptr, 10));
        } else if (arg == "--group-pages") {
            config.reservation_pages =
                static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        } else if (arg == "--threads") {
            options.threads =
                static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        } else if (arg == "--stop-after-init") {
            config.with_stop_corunners_after_init();
        } else {
            usage(argv[0]);
        }
    }
    if (!co_given)
        config.with_corunner_preset("objdet8");

    std::printf("victim=%s scale=%.3g ops=%llu seed=%llu co-runners:",
                config.victim.c_str(), config.scale,
                static_cast<unsigned long long>(config.measure_ops),
                static_cast<unsigned long long>(config.seed));
    for (const CorunnerSpec &spec : config.corunners)
        std::printf(" %sx%u", spec.name.c_str(), spec.workers);
    std::printf("\n\n");

    ExperimentSuite suite("run_experiment");
    suite.add(config.victim, config);
    SuiteResult result = suite.run(options);
    const EntryResult &entry = result.at(config.victim);
    if (entry.failed()) {
        std::fprintf(stderr, "fatal: %s\n", entry.error.c_str());
        return 1;
    }
    const PairedResult &pair = entry.paired;

    ptm::MetricSet::print_change_table(pair.baseline.metrics,
                                  pair.ptemagnet.metrics,
                                  "PTEMagnet vs default kernel:");
    std::printf("\nimprovement: %.2f%%   fragmentation: %.2f -> %.2f   "
                "buddy calls: %llu -> %llu\n",
                pair.improvement_percent(),
                pair.baseline.fragmentation.average_hpte_lines,
                pair.ptemagnet.fragmentation.average_hpte_lines,
                static_cast<unsigned long long>(pair.baseline.buddy_calls),
                static_cast<unsigned long long>(
                    pair.ptemagnet.buddy_calls));
    return 0;
}
