/**
 * @file
 * General-purpose scenario runner: compose any victim/co-runner
 * colocation from the command line and get the paper's metric set for
 * the default kernel vs PTEMagnet. This is the "drive the library
 * yourself" entry point for experiments the benches don't cover.
 *
 * Usage:
 *   run_experiment [options]
 *     --victim NAME         benchmark to measure      (default pagerank)
 *     --co NAME[xCOUNT]     add a co-runner; repeatable (default objdetx8)
 *     --scale F             footprint multiplier       (default 0.5)
 *     --ops N               measured victim operations (default 400000)
 *     --seed N              scenario seed              (default 1)
 *     --group-pages N       reservation granularity    (default 8)
 *     --stop-after-init     pause co-runners before measuring (Table 1)
 *
 * Example:
 *   ./build/examples/run_experiment --victim xz --co stress-ngx12 \
 *       --scale 0.25 --ops 200000
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sim/experiment.hpp"

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--victim NAME] [--co NAME[xCOUNT]]... "
                 "[--scale F] [--ops N]\n"
                 "          [--seed N] [--group-pages N] "
                 "[--stop-after-init]\n",
                 argv0);
    std::exit(1);
}

ptm::sim::CorunnerSpec
parse_corunner(const std::string &spec)
{
    std::size_t x = spec.rfind('x');
    if (x != std::string::npos && x + 1 < spec.size() &&
        std::isdigit(static_cast<unsigned char>(spec[x + 1]))) {
        return {spec.substr(0, x),
                static_cast<unsigned>(std::stoul(spec.substr(x + 1)))};
    }
    return {spec, 1};
}

}  // namespace

int
main(int argc, char **argv)
{
    using namespace ptm::sim;

    ScenarioConfig config;
    config.victim = "pagerank";
    config.scale = 0.5;
    config.measure_ops = 400'000;
    bool co_given = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--victim") {
            config.victim = next();
        } else if (arg == "--co") {
            config.corunners.push_back(parse_corunner(next()));
            co_given = true;
        } else if (arg == "--scale") {
            config.scale = std::atof(next());
        } else if (arg == "--ops") {
            config.measure_ops = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--seed") {
            config.seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--group-pages") {
            config.reservation_pages =
                static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        } else if (arg == "--stop-after-init") {
            config.stop_corunners_after_init = true;
        } else {
            usage(argv[0]);
        }
    }
    if (!co_given)
        config.corunners = {{"objdet", 8}};

    std::printf("victim=%s scale=%.3g ops=%llu seed=%llu co-runners:",
                config.victim.c_str(), config.scale,
                static_cast<unsigned long long>(config.measure_ops),
                static_cast<unsigned long long>(config.seed));
    for (const CorunnerSpec &spec : config.corunners)
        std::printf(" %sx%u", spec.name.c_str(), spec.workers);
    std::printf("\n\n");

    PairedResult pair = run_paired(config);
    print_change_table(pair.baseline.metrics, pair.ptemagnet.metrics,
                       "PTEMagnet vs default kernel:");
    std::printf("\nimprovement: %.2f%%   fragmentation: %.2f -> %.2f   "
                "buddy calls: %llu -> %llu\n",
                pair.improvement_percent(),
                pair.baseline.fragmentation.average_hpte_lines,
                pair.ptemagnet.fragmentation.average_hpte_lines,
                static_cast<unsigned long long>(pair.baseline.buddy_calls),
                static_cast<unsigned long long>(
                    pair.ptemagnet.buddy_calls));
    return 0;
}
