/**
 * @file
 * Quickstart: build a virtualized system, colocate one benchmark with a
 * co-runner, and compare the default Linux allocator against PTEMagnet.
 *
 * Run:  ./build/examples/quickstart [benchmark] [corunner]
 */
#include <cstdio>
#include <string>

#include "sim/experiment.hpp"

int
main(int argc, char **argv)
{
    std::string victim = argc > 1 ? argv[1] : "pagerank";
    std::string corunner = argc > 2 ? argv[2] : "objdet";

    ptm::sim::ScenarioConfig config;
    config.victim = victim;
    // The paper's co-runners are multi-threaded (objdet runs 8 threads).
    config.corunners = {{corunner, 8}};
    config.measure_ops = 400'000;
    config.scale = 0.5;

    std::printf("colocating %s with %s inside one VM...\n\n",
                victim.c_str(), corunner.c_str());

    ptm::sim::PairedResult pair = ptm::sim::run_paired(config);

    ptm::MetricSet::print_change_table(
        pair.baseline.metrics, pair.ptemagnet.metrics,
        "PTEMagnet vs default kernel (" + victim + " + " + corunner + ")");

    std::printf("\nhost PT fragmentation: %.2f -> %.2f (1.0 is perfect)\n",
                pair.baseline.fragmentation.average_hpte_lines,
                pair.ptemagnet.fragmentation.average_hpte_lines);
    std::printf("performance improvement: %.1f%%\n",
                pair.improvement_percent());
    std::printf("buddy calls: %llu -> %llu (PaRT hits: %llu)\n",
                static_cast<unsigned long long>(pair.baseline.buddy_calls),
                static_cast<unsigned long long>(pair.ptemagnet.buddy_calls),
                static_cast<unsigned long long>(pair.ptemagnet.part_hits));
    return 0;
}
