/**
 * @file
 * Visualizes the paper's Figures 1-4: how interleaved allocation breaks
 * guest-physical (== host-virtual) contiguity, how that scatters host
 * PTEs across cache lines, and what a nested walk trajectory looks like
 * for eight neighbouring pages — with and without PTEMagnet. Then runs a
 * small colocated System with the observability layer armed and prints
 * the walk-latency distribution straight from the stat registry.
 *
 * Run: ./build/examples/walk_trajectory [--trace out.json]
 *
 * With --trace, every page walk, guest fault, and reclaim sweep of the
 * System demo is written as a chrome://tracing JSON file; load it into
 * chrome://tracing or Perfetto (tracks are keyed by core).
 */
#include <cstdio>
#include <cstring>
#include <set>
#include <string>

#include "core/ptemagnet_provider.hpp"
#include "host/host_kernel.hpp"
#include "obs/stat_registry.hpp"
#include "obs/trace_sink.hpp"
#include "sim/system.hpp"
#include "vm/guest_kernel.hpp"
#include "workload/catalog.hpp"

namespace {

using namespace ptm;

void
show(bool use_ptemagnet)
{
    host::HostKernel host(64 * 1024);
    host::VmInstance &vm = host.create_vm();
    vm::GuestKernel guest(32 * 1024);
    if (use_ptemagnet) {
        guest.set_provider(
            std::make_unique<core::PtemagnetProvider>(&guest));
    }

    vm::Process &app = guest.create_process("app");
    vm::Process &noisy = guest.create_process("co-runner");
    Addr app_base = app.vas().mmap(kReservationBytes);
    Addr noisy_base = noisy.vas().mmap(64 * kPageSize);

    // Figure 1/4: the app touches its 8-page region while the co-runner
    // keeps allocating — faults interleave 1:2.
    std::uint64_t noisy_vpn = page_number(noisy_base);
    for (unsigned i = 0; i < 8; ++i) {
        guest.handle_fault(app, page_number(app_base) + i);
        guest.handle_fault(noisy, noisy_vpn++);
        guest.handle_fault(noisy, noisy_vpn++);
    }

    std::printf("%s\n",
                use_ptemagnet ? "--- with PTEMagnet ---"
                              : "--- default Linux allocator ---");
    std::printf("%5s %10s %12s %16s %16s\n", "page", "gvpn", "gfn",
                "gPTE cache line", "hPTE cache line");

    std::set<std::uint64_t> hpte_lines;
    for (unsigned i = 0; i < 8; ++i) {
        std::uint64_t gvpn = page_number(app_base) + i;
        std::uint64_t gfn = app.page_table().lookup(gvpn)->frame();
        // Touch the host side (lazy backing) so the hPTE slot exists.
        host.handle_fault(vm, gfn);
        Addr gpte = *app.page_table().leaf_entry_paddr(gvpn);
        Addr hpte = *vm.page_table().leaf_entry_paddr(gfn);
        hpte_lines.insert(line_number(hpte));
        std::printf("%5u %10llu %12llu %16llu %16llu\n", i,
                    static_cast<unsigned long long>(gvpn),
                    static_cast<unsigned long long>(gfn),
                    static_cast<unsigned long long>(line_number(gpte)),
                    static_cast<unsigned long long>(line_number(hpte)));
    }
    std::printf("=> the 8 neighbouring pages' host PTEs span %zu cache "
                "line(s)\n\n", hpte_lines.size());
}

void
print_walk_histogram(const obs::StatSnapshot &snap, const char *label)
{
    const obs::HistogramSummary &walks =
        snap.histogram("vm0.core0.walker.walk_cycles_hist");
    std::printf("  %-22s walks=%-8llu p50=%-5llu p90=%-5llu p99=%-5llu "
                "mean=%.1f\n",
                label, static_cast<unsigned long long>(walks.count),
                static_cast<unsigned long long>(walks.p50),
                static_cast<unsigned long long>(walks.p90),
                static_cast<unsigned long long>(walks.p99), walks.mean);
}

/// The same colocation as show(), but executed: a victim and a noisy
/// co-runner interleave on a System, and the registry reports the walk
/// latency each policy produces.
void
run_system_demo(const std::string &trace_path)
{
    std::printf("--- measured walk latency (registry histograms) ---\n");
    obs::TraceSink sink;
    for (bool use_ptemagnet : {false, true}) {
        sim::PlatformConfig platform;
        platform.guest_frames = 32 * 1024;
        platform.host_frames = 48 * 1024;
        sim::System system(platform, 2);
        if (use_ptemagnet)
            system.enable_ptemagnet();
        // Arm tracing only for the PTEMagnet leg, so the file shows the
        // interesting (packed-reservation) trajectories.
        if (use_ptemagnet && !trace_path.empty())
            system.set_trace_sink(&sink);

        workload::WorkloadOptions options;
        options.scale = 0.125;
        sim::Job &victim =
            system.add_job(workload::make_workload("pagerank", options));
        options.seed = 2;
        system.add_job(workload::make_workload("objdet", options));
        system.run_until([&]() {
            return victim.stats().ops.value() >= 50'000;
        });

        print_walk_histogram(system.stat_registry().snapshot(),
                             use_ptemagnet ? "ptemagnet" : "buddy");
        if (use_ptemagnet && !trace_path.empty())
            system.set_trace_sink(nullptr);
    }
    if (!trace_path.empty()) {
        sink.write_json(trace_path);
        std::printf("  wrote %zu trace events to %s\n", sink.size(),
                    trace_path.c_str());
    }
}

}  // namespace

int
main(int argc, char **argv)
{
    std::string trace_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
            trace_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--trace out.json]\n", argv[0]);
            return 1;
        }
    }

    std::printf(
        "Eight virtually-contiguous pages of an application, allocated\n"
        "while a co-runner's faults interleave (Figures 1-4 of the "
        "paper).\nGuest PTEs always share one line (indexed by virtual "
        "address);\nhost PTEs only do if guest-physical contiguity "
        "survived.\n\n");
    show(false);
    show(true);
    std::printf(
        "A nested walk for each page must fetch its hPTE line; scattered\n"
        "lines mean up to 8 distinct memory blocks per group (Figure "
        "2b),\npacked lines mean one (Figure 2a). That difference is the\n"
        "entire performance effect measured in the evaluation benches:\n\n");
    run_system_demo(trace_path);
    return 0;
}
