/**
 * @file
 * Visualizes the paper's Figures 1-4: how interleaved allocation breaks
 * guest-physical (== host-virtual) contiguity, how that scatters host
 * PTEs across cache lines, and what a nested walk trajectory looks like
 * for eight neighbouring pages — with and without PTEMagnet.
 *
 * Run: ./build/examples/walk_trajectory
 */
#include <cstdio>
#include <set>

#include "core/ptemagnet_provider.hpp"
#include "host/host_kernel.hpp"
#include "vm/guest_kernel.hpp"

namespace {

using namespace ptm;

void
show(bool use_ptemagnet)
{
    host::HostKernel host(64 * 1024);
    host::VmInstance &vm = host.create_vm();
    vm::GuestKernel guest(32 * 1024);
    if (use_ptemagnet) {
        guest.set_provider(
            std::make_unique<core::PtemagnetProvider>(&guest));
    }

    vm::Process &app = guest.create_process("app");
    vm::Process &noisy = guest.create_process("co-runner");
    Addr app_base = app.vas().mmap(kReservationBytes);
    Addr noisy_base = noisy.vas().mmap(64 * kPageSize);

    // Figure 1/4: the app touches its 8-page region while the co-runner
    // keeps allocating — faults interleave 1:2.
    std::uint64_t noisy_vpn = page_number(noisy_base);
    for (unsigned i = 0; i < 8; ++i) {
        guest.handle_fault(app, page_number(app_base) + i);
        guest.handle_fault(noisy, noisy_vpn++);
        guest.handle_fault(noisy, noisy_vpn++);
    }

    std::printf("%s\n",
                use_ptemagnet ? "--- with PTEMagnet ---"
                              : "--- default Linux allocator ---");
    std::printf("%5s %10s %12s %16s %16s\n", "page", "gvpn", "gfn",
                "gPTE cache line", "hPTE cache line");

    std::set<std::uint64_t> hpte_lines;
    for (unsigned i = 0; i < 8; ++i) {
        std::uint64_t gvpn = page_number(app_base) + i;
        std::uint64_t gfn = app.page_table().lookup(gvpn)->frame();
        // Touch the host side (lazy backing) so the hPTE slot exists.
        host.handle_fault(vm, gfn);
        Addr gpte = *app.page_table().leaf_entry_paddr(gvpn);
        Addr hpte = *vm.page_table().leaf_entry_paddr(gfn);
        hpte_lines.insert(line_number(hpte));
        std::printf("%5u %10llu %12llu %16llu %16llu\n", i,
                    static_cast<unsigned long long>(gvpn),
                    static_cast<unsigned long long>(gfn),
                    static_cast<unsigned long long>(line_number(gpte)),
                    static_cast<unsigned long long>(line_number(hpte)));
    }
    std::printf("=> the 8 neighbouring pages' host PTEs span %zu cache "
                "line(s)\n\n", hpte_lines.size());
}

}  // namespace

int
main()
{
    std::printf(
        "Eight virtually-contiguous pages of an application, allocated\n"
        "while a co-runner's faults interleave (Figures 1-4 of the "
        "paper).\nGuest PTEs always share one line (indexed by virtual "
        "address);\nhost PTEs only do if guest-physical contiguity "
        "survived.\n\n");
    show(false);
    show(true);
    std::printf(
        "A nested walk for each page must fetch its hPTE line; scattered\n"
        "lines mean up to 8 distinct memory blocks per group (Figure "
        "2b),\npacked lines mean one (Figure 2a). That difference is the\n"
        "entire performance effect measured in the evaluation benches.\n");
    return 0;
}
